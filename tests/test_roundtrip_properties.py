"""Property-based round-trip and canonicalization tests.

Two serialization surfaces back the harness's content-addressed stores:
the compiled-trace wire format (``CompiledTrace.to_bytes``) and the
workload wire format (``WorkloadSpec.to_bytes``); and one
canonicalization backs the disk-cache identity of every overridden run
(``Overrides``).  Hypothesis drives all three across random inputs:
arbitrary op/arg streams (empty traces and max-width 64-bit args
included) must survive a byte round trip unchanged, and overrides built
in any insertion order must be the same object for every purpose the
engine puts them to — equality, hashing, repr and the cache path.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.engine import ExperimentEngine, RunKey
from repro.harness.scenario import Overrides
from repro.params import Scheme
from repro.trace import (
    BARRIER,
    COMPUTE,
    END,
    LOAD,
    LOCK,
    OUTPUT,
    STORE,
    UNLOCK,
    CompiledTrace,
    TraceBuilder,
    compile_trace,
)
from repro.workloads.base import BarrierSpec, LockSpec, WorkloadSpec

I64_MIN, I64_MAX = -(1 << 63), (1 << 63) - 1

OPS = (COMPUTE, LOAD, STORE, BARRIER, LOCK, UNLOCK, OUTPUT, END)

#: Arbitrary records: every op with the full signed-64-bit arg range,
#: biased toward the extremes (max-width args are the regression case:
#: sync-region line addresses live beyond 2^40).  COMPUTE args stay
#: non-negative and bounded so the builder's running instruction count
#: fits the wire header's unsigned 64-bit field even across 64 records.
wide_args = st.one_of(st.integers(I64_MIN, I64_MAX),
                      st.sampled_from([0, 1, I64_MIN, I64_MAX,
                                       1 << 40, -(1 << 40)]))
records = st.lists(
    st.one_of(
        st.tuples(st.just(COMPUTE), st.integers(0, 1 << 40)),
        st.tuples(st.sampled_from((LOAD, STORE, BARRIER, LOCK, UNLOCK,
                                   OUTPUT)), wide_args),
        # END carries no argument (the tuple-record view renders it
        # as the 1-tuple ``(END,)``), so its column value is fixed.
        st.tuples(st.just(END), st.just(0))),
    min_size=0, max_size=64)


def build_trace(pairs) -> CompiledTrace:
    builder = TraceBuilder()
    for op, arg in pairs:
        builder.append(op, arg)
    return builder.build()


class TestCompiledTraceRoundTrip:
    @given(records)
    @settings(max_examples=120, deadline=None)
    def test_to_bytes_from_bytes_identity(self, pairs):
        trace = build_trace(pairs)
        clone = CompiledTrace.from_bytes(trace.to_bytes())
        assert clone == trace
        assert clone.ops == trace.ops
        assert clone.args == trace.args
        assert clone.n_instructions == trace.n_instructions
        # The wire image is a pure function of the content.
        assert clone.to_bytes() == trace.to_bytes()

    def test_empty_trace_round_trips(self):
        empty = compile_trace([])
        clone = CompiledTrace.from_bytes(empty.to_bytes())
        assert len(clone) == 0
        assert clone == empty
        assert clone.n_instructions == 0

    def test_max_width_args_round_trip(self):
        trace = build_trace([(LOAD, I64_MAX), (STORE, I64_MIN),
                             (COMPUTE, I64_MAX), (OUTPUT, I64_MAX)])
        clone = CompiledTrace.from_bytes(trace.to_bytes())
        assert list(clone.args) == [I64_MAX, I64_MIN, I64_MAX, I64_MAX]


#: Workloads assembled from random traces plus a random sync plan.
workloads = st.builds(
    lambda name, traces, locks, barriers: WorkloadSpec(
        name=name,
        traces=[build_trace(t) for t in traces],
        locks=[LockSpec(i, line) for i, line in enumerate(locks)],
        barriers=[BarrierSpec(i, list(range(len(traces) or 1)), c, f)
                  for i, (c, f) in enumerate(barriers)]),
    st.text(min_size=0, max_size=12),
    st.lists(records, min_size=0, max_size=4),
    st.lists(st.integers(0, I64_MAX), max_size=3),
    st.lists(st.tuples(st.integers(0, I64_MAX),
                       st.integers(0, I64_MAX)), max_size=2))


class TestWorkloadSpecRoundTrip:
    @given(workloads)
    @settings(max_examples=60, deadline=None)
    def test_to_bytes_from_bytes_identity(self, spec):
        clone = WorkloadSpec.from_bytes(spec.to_bytes())
        assert clone == spec
        # Byte-for-byte deterministic: the store's address contract.
        assert clone.to_bytes() == spec.to_bytes()

    @given(workloads)
    @settings(max_examples=30, deadline=None)
    def test_bytes_independent_of_trace_representation(self, spec):
        """Tuple-trace and compiled-trace twins serialize identically
        (to_bytes compiles through the same IR)."""
        twin = WorkloadSpec(name=spec.name,
                            traces=[list(t) for t in spec.traces],
                            locks=spec.locks, barriers=spec.barriers)
        assert twin.to_bytes() == spec.to_bytes()


#: Overridable scalar axes (name -> value strategy), dotted nested
#: fields included: the canonical-ordering property must hold across
#: the whole namespace, not just top-level fields.
OVERRIDE_AXES = {
    "detection_latency": st.integers(1, 10**6),
    "memory_cycles": st.integers(1, 10**4),
    "checkpoint_interval": st.integers(1, 10**7),
    "sync_cycles": st.integers(1, 10**4),
    "backoff_max": st.integers(1, 10**4),
    "barrier_interest_fraction": st.floats(0.0, 1.0,
                                           allow_nan=False),
    "check_coherence": st.booleans(),
    "l1.size_bytes": st.integers(64, 1 << 20),
    "l2.hit_cycles": st.integers(1, 64),
}

override_mappings = st.dictionaries(
    st.sampled_from(sorted(OVERRIDE_AXES)),
    st.integers(0, 0),   # placeholder, re-drawn below
    min_size=1, max_size=5,
).flatmap(lambda d: st.fixed_dictionaries(
    {name: OVERRIDE_AXES[name] for name in d}))


class TestOverridesCanonicalization:
    @given(override_mappings, st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_insertion_order_never_matters(self, mapping, rng):
        items = list(mapping.items())
        shuffled = list(items)
        rng.shuffle(shuffled)
        a = Overrides(dict(items))
        b = Overrides(dict(shuffled))
        assert a == b
        assert hash(a) == hash(b)
        assert repr(a) == repr(b)
        assert list(a.items()) == sorted(mapping.items())

    @given(override_mappings, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_equal_overrides_share_one_cache_path(self, mapping, rng):
        """The disk-cache identity must not depend on how the scenario
        dict was assembled: same overrides => same entry."""
        shuffled = list(mapping.items())
        rng.shuffle(shuffled)
        # Path derivation only (no disk I/O): any cache_dir works.
        engine = ExperimentEngine(jobs=1, use_disk_cache=False,
                                  cache_dir="unused-cache-dir")
        key_a = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                       overrides=Overrides(mapping))
        key_b = RunKey("blackscholes", 4, Scheme.REBOUND, 1.5, 1, 300,
                       overrides=Overrides(dict(shuffled)))
        assert key_a == key_b
        assert engine._cache_path(key_a) == engine._cache_path(key_b)

    def test_kwargs_and_mapping_agree(self):
        assert Overrides(detection_latency=7, sync_cycles=9) == \
            Overrides({"sync_cycles": 9, "detection_latency": 7})

    def test_mixed_sources_canonicalize(self):
        rng = random.Random(4)
        names = sorted(OVERRIDE_AXES)
        rng.shuffle(names)
        mapping = {"l1.size_bytes": 4096, "detection_latency": 123,
                   "check_coherence": True}
        variants = [Overrides(dict(reversed(list(mapping.items())))),
                    Overrides({k: mapping[k] for k in
                               sorted(mapping, key=str.lower)}),
                    Overrides(mapping)]
        assert len({repr(v) for v in variants}) == 1
        assert len({hash(v) for v in variants}) == 1
