"""RL004 fixture: cache-identity types with and without stable
hash/repr identity."""

from dataclasses import dataclass


class Knob:                 # RL004: address-derived identity
    def __init__(self, value):
        self.value = value


class Overrides(dict):      # RL004: identity carrier without hash/repr
    pass


class GoodTag:              # ok: explicit __hash__ + __repr__
    def __init__(self, value):
        self._value = value

    def __hash__(self):
        return hash(self._value)

    def __repr__(self):
        return f"GoodTag({self._value!r})"


@dataclass(frozen=True)
class RunKey:               # ok: frozen dataclass
    app: str
    knob: "Knob"
    tag: GoodTag
