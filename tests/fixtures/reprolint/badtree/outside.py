"""RL003 fixture: reachable from ``execute_run`` but excluded from the
fingerprint set by the test — the "stale cache" hazard module."""


def helper(value):
    return value
