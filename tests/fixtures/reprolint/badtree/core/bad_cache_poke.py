"""RL006 fixture: scheme code mutating cache/directory state directly."""


def poke(self, machine, pid, addr):
    machine.engine.l2s[pid].invalidate(addr)
    machine.engine.l1s[pid].invalidate_all()
    machine.engine.l2s[pid].peek(addr).delayed = False
    machine.engine.directory.entry(addr).lw_id = None
    # Legal: a line the engine handed out is mutated through a bare
    # local — the engine-side call is the audited entry point — and
    # reacting in on_fastpath_epoch is the sanctioned discipline.
    line = machine.engine.l2s[pid].peek(addr)
    line.delayed = False
    machine.engine.l2s[pid].invalidate(addr)  # reprolint: disable=RL006
