"""RL003 fixture: a ``register_workload`` call site outside the
workloads package that forgets its ``fingerprint=`` signal."""

from badtree.workloads.registry import register_workload


def build(n_threads, config, intervals, seed):
    return None


TAG = register_workload("plugin_app", build)        # RL003: no fingerprint
OK = register_workload("pinned_app", build, fingerprint="v1")
