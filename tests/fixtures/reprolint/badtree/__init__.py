"""Known-bad fixture tree for the reprolint tests.

Every file here violates one of the RL001-RL004 contracts on purpose;
tests/test_reprolint.py asserts each rule fires on its designated
lines.  Nothing in this tree is ever imported — it exists only as AST
input for the analyzer.
"""
