"""RL003 fixture: the execution entry points, importing one module the
test excludes from the fingerprint set (``badtree.outside``) and one
that does not exist at all (``badtree.ghost``)."""

import badtree.ghost                        # RL003: resolves to no file
from badtree.outside import helper


def execute_run(key):
    return helper(key)


def run_replica_batch(config, workload, fault_lists):
    return [helper(faults) for faults in fault_lists]
