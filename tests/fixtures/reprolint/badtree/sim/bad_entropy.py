"""RL002 fixture: one of each entropy/ordering hazard, plus one
suppressed hit (the suppression machinery itself is under test)."""

import random
import time


def stamp():
    return time.time()                      # RL002: wall clock


def stamp_suppressed():
    return time.time()                      # reprolint: disable=RL002


def draw():
    return random.random()                  # RL002: global RNG


def draw_seeded(seed):
    return random.Random(seed).random()     # ok: seeded instance


def order(cores):
    return sorted(cores, key=lambda c: id(c))   # RL002: id() ordering


def collect(pids):
    total = 0
    for pid in set(pids):                   # RL002: unordered iteration
        total += pid
    for pid in sorted(set(pids)):           # ok: sorted first
        total += pid
    return total
