"""RL001 fixture: every closure-scheduling spelling the rule must
catch.  Lines are pinned by tests/test_reprolint.py."""

import heapq

_CALL = 1


class BadScheme:
    def arm(self, machine, when):
        machine.schedule(when, self.fire)          # RL001: legacy path

    def arm_lambda(self, machine, when):
        machine.schedule_call(when, lambda t: None)   # RL001: lambda

    def arm_local(self, machine, heap, when):
        def callback(t):
            self.fire(t)
        heapq.heappush(heap, (when, 0, _CALL, callback, None))  # RL001

    def fire(self, when):
        pass
