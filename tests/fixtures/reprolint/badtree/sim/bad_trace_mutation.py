"""RL005 fixture: in-place mutation of shared CompiledTrace columns."""


def clobber(trace, core):
    trace.ops[0] = 5
    trace.args[3] += 1
    trace.ops.frombytes(b"\x00")
    del trace.args[0]
    # Legal: rebinding an attribute replaces the reference, never the
    # shared buffer; a bare local array under construction is fine too.
    core.ops = trace.ops.tolist()
    ops = []
    ops.append(1)
    trace.args = list(trace.args)
    trace.ops[1] = 2  # reprolint: disable=RL005
