"""Tests for the memory-channel timing model."""

from repro.mem.channels import MemoryChannels
from tests.conftest import tiny_config


def make_channels(**over):
    return MemoryChannels(tiny_config(**over))


class TestDemandPath:
    def test_idle_channel_no_extra_latency(self):
        channels = make_channels()
        extra, ckpt = channels.demand_access(100.0, addr=0)
        assert extra == 0.0
        assert ckpt == 0.0

    def test_back_to_back_demand_queues(self):
        channels = make_channels()
        channels.demand_access(100.0, 0)
        extra, _ = channels.demand_access(100.0, 0)   # same channel
        assert extra > 0

    def test_channels_independent(self):
        channels = make_channels()
        channels.demand_access(100.0, 0)
        extra, _ = channels.demand_access(100.0, 1)   # other channel
        assert extra == 0.0

    def test_checkpoint_writeback_interferes_boundedly(self):
        channels = make_channels()
        for addr in range(0, 40, 2):  # pile writebacks on channel 0
            channels.writeback(100.0, addr, logged=True, checkpoint=True)
        extra, ckpt = channels.demand_access(100.0, 0)
        assert 0 < extra
        assert ckpt > 0
        # Demand priority: bounded by the stream-scaled cap, not the
        # full backlog.
        backlog = channels.wb_busy[0] - 100.0
        assert extra < backlog

    def test_non_checkpoint_writebacks_not_attributed(self):
        channels = make_channels()
        channels.writeback(100.0, 0, logged=True, checkpoint=False)
        channels.writeback(100.0, 0, logged=True, checkpoint=False)
        _, ckpt = channels.demand_access(100.0, 0)
        assert ckpt == 0.0


class TestWritebackPath:
    def test_writeback_queues_fifo(self):
        channels = make_channels()
        first = channels.writeback(100.0, 0, logged=True, checkpoint=True)
        second = channels.writeback(100.0, 0, logged=True, checkpoint=True)
        assert second > first

    def test_logged_writeback_costs_more(self):
        channels = make_channels()
        logged = channels.writeback(100.0, 0, logged=True, checkpoint=False)
        channels2 = make_channels()
        plain = channels2.writeback(100.0, 0, logged=False, checkpoint=False)
        assert logged - 100.0 > plain - 100.0

    def test_burst_returns_last_completion(self):
        channels = make_channels()
        done = channels.burst_writeback(0.0, list(range(10)))
        assert done >= 10 / channels.n * channels.config.dram_occupancy

    def test_priority_writeback_jumps_queue(self):
        channels = make_channels()
        for addr in range(0, 60, 2):
            channels.writeback(100.0, addr, logged=True, checkpoint=True)
        queued = channels.writeback(100.0, 0, logged=True, checkpoint=True)
        priority = channels.priority_writeback(100.0, 0)
        assert priority < queued

    def test_priority_writeback_contention_scales_with_streams(self):
        quiet = make_channels()
        busy = make_channels()
        for _ in range(32):
            busy.bg_start()
        assert busy.priority_writeback(0.0, 0) > \
            quiet.priority_writeback(0.0, 0)


class TestBackgroundStreams:
    def test_stream_counting(self):
        channels = make_channels()
        channels.bg_start()
        channels.bg_start()
        assert channels.bg_streams == 2
        channels.bg_stop()
        channels.bg_stop()
        channels.bg_stop()          # extra stop clamps at zero
        assert channels.bg_streams == 0

    def test_drain_time_scales_with_lines_and_contention(self):
        channels = make_channels()
        short = channels.bg_drain_time(10, period=12)
        long = channels.bg_drain_time(100, period=12)
        assert long > short
        for _ in range(20):
            channels.bg_start()
        contended = channels.bg_drain_time(100, period=12)
        assert contended > long

    def test_bg_account_raises_ckpt_horizon(self):
        channels = make_channels()
        channels.bg_account(100.0, n_lines=50, window=1_000.0)
        assert channels.ckpt_wb_busy[0] > 100.0
        _, ckpt = channels.demand_access(110.0, 0)
        assert ckpt > 0


class TestRestore:
    def test_restore_parallelizes_across_banks(self):
        channels = make_channels()
        done = channels.restore(0.0, n_entries=100)
        serial = 100 * channels.config.restore_occupancy
        assert done < serial
        assert done >= serial / channels.n

    def test_restore_zero_entries_instant(self):
        channels = make_channels()
        assert channels.restore(42.0, 0) == 42.0
