"""Parity guard for the fused (batched) simulation hot path.

``Machine.run`` keeps a core resident in the event loop across runs of
consecutive COMPUTE/LOAD/STORE records instead of paying a heap
push/pop per record.  The fusion condition mirrors the serial heap
discipline exactly, so every statistic must be bit-identical to the
one-record-per-pop execution (``fuse_quantum=1``) — for every scheme,
with synchronization, output I/O and fault injection in the mix.
"""

import pytest

from repro.params import MachineConfig, Scheme
from repro.sim.machine import DEFAULT_FUSE_QUANTUM, Machine
from repro.trace import BARRIER, COMPUTE, END, LOAD, STORE
from repro.workloads import get_workload, inject_output_io
from tests.conftest import make_machine, make_spec, tiny_config

SCALE = 150
INTERVALS = 1.8


def _spec(app, n_cores, config, io_every=None):
    spec = get_workload(app, n_cores, config, intervals=INTERVALS, seed=1)
    if io_every is not None:
        spec = inject_output_io(spec=spec, pid=0,
                                every_instructions=io_every)
    return spec


def _run_pair(app, n_cores, scheme, io_every=None, fault_at=None,
              faults=None, quantum=DEFAULT_FUSE_QUANTUM):
    config = MachineConfig.scaled(n_cores=n_cores, scheme=scheme,
                                  scale=SCALE)
    if faults is None:
        faults = [(fault_at, 0)] if fault_at is not None else None
    unbatched = Machine(config, _spec(app, n_cores, config, io_every),
                        faults=faults, fuse_quantum=1).run()
    batched = Machine(config, _spec(app, n_cores, config, io_every),
                      faults=faults, fuse_quantum=quantum).run()
    return unbatched, batched


class TestBatchedParity:
    @pytest.mark.parametrize("app,n_cores,scheme", [
        ("blackscholes", 8, Scheme.NONE),
        ("blackscholes", 8, Scheme.REBOUND),
        ("ocean", 8, Scheme.GLOBAL),
        ("ocean", 4, Scheme.GLOBAL_DWB),
        ("barnes", 8, Scheme.REBOUND_BARR),       # barrier-intensive
        ("radiosity", 4, Scheme.REBOUND_NODWB_BARR),
        ("water_sp", 4, Scheme.REBOUND_NODWB),
        ("apache", 4, Scheme.REBOUND),            # lock-heavy
    ])
    def test_matrix_parity(self, app, n_cores, scheme):
        unbatched, batched = _run_pair(app, n_cores, scheme)
        assert batched == unbatched

    @pytest.mark.parametrize("scheme", [Scheme.GLOBAL, Scheme.REBOUND])
    def test_output_io_parity(self, scheme):
        unbatched, batched = _run_pair("blackscholes", 4, scheme,
                                       io_every=4000)
        assert batched == unbatched
        assert any(e.kind == "io" for e in batched.checkpoints)

    def test_output_retry_when_scheme_answers_none(self):
        # OUTPUT every 50 instructions outpaces the Dep-set rotation,
        # so initiate_checkpoint answers None (retry later, Sec 3.3.4);
        # the loop must re-push the core at not_before instead of
        # computing ``None + io_cycles`` (crashed before the fix).
        unbatched, batched = _run_pair("blackscholes", 4, Scheme.REBOUND,
                                       io_every=50)
        assert batched == unbatched
        # The retry path really fired: deferred initiators accumulate
        # Dep-set stall cycles.
        assert sum(c.depset_stall for c in batched.cores) > 0

    @pytest.mark.parametrize("scheme", [Scheme.GLOBAL, Scheme.REBOUND,
                                        Scheme.REBOUND_NODWB])
    def test_fault_injection_parity(self, scheme):
        interval = MachineConfig.scaled(n_cores=4,
                                        scale=SCALE).checkpoint_interval
        unbatched, batched = _run_pair("ocean", 4, scheme,
                                       fault_at=1.6 * interval)
        assert batched == unbatched
        assert batched.rollbacks  # the fault really recovered

    def test_multi_fault_exact_delivery_parity(self):
        # Faults are their own heap events, so delivery happens at the
        # exact detection time no matter how records fuse: the batched
        # run must match the serial one bit-for-bit, and every rollback
        # must be pinned to an injected fault's detection time (under
        # the old piggy-back delivery a fused core could commit work
        # past detect_time before the scheme heard about the fault).
        config = MachineConfig.scaled(n_cores=4, scale=SCALE)
        interval = config.checkpoint_interval
        faults = [(1.3 * interval, 0), (1.32 * interval, 2),
                  (2.4 * interval, 0)]       # back-to-back + same-core
        unbatched, batched = _run_pair("ocean", 4, Scheme.REBOUND,
                                       faults=faults)
        assert batched == unbatched
        assert len(batched.rollbacks) >= 2
        expected = {t + config.detection_latency for t, _ in faults}
        assert {r.detect_time for r in batched.rollbacks} <= expected

    @pytest.mark.parametrize("quantum", [2, 3, 7, 64])
    def test_any_quantum_is_equivalent(self, quantum):
        unbatched, batched = _run_pair("water_sp", 4, Scheme.REBOUND,
                                       quantum=quantum)
        assert batched == unbatched

    def test_single_core_fuses_across_empty_heap(self):
        # One active core: nothing else is ever due, so the whole trace
        # runs in quantum-sized residencies; results must not change.
        trace = [(COMPUTE, 10), (STORE, 3), (LOAD, 3)] * 200 + [(END,)]
        a = make_machine([list(trace)],
                         config=tiny_config(2, Scheme.NONE))
        b = make_machine([list(trace)],
                         config=tiny_config(2, Scheme.NONE))
        b.fuse_quantum = 1
        assert a.run() == b.run()

    def test_rejects_bad_quantum(self):
        spec = make_spec([[(END,)]])
        with pytest.raises(ValueError, match="fuse_quantum"):
            Machine(tiny_config(2, Scheme.NONE), spec, fuse_quantum=0)

    def test_max_cycles_guard_still_fires_in_batch(self):
        # The per-record cycle guard must also trip inside a fused run
        # (single core, empty heap -> pure batching).
        machine = make_machine(
            [[(COMPUTE, 50)] * 100 + [(END,)]],
            config=tiny_config(2, Scheme.NONE))
        with pytest.raises(RuntimeError, match="exceeded"):
            machine.run(max_cycles=1000)

    def test_barrier_sync_parity(self):
        # Hand-built barrier workload: cores meet twice, with skew.
        from repro.trace import AddressSpace
        from tests.conftest import barrier_spec
        traces = [
            [(COMPUTE, 50), (BARRIER, 0), (COMPUTE, 200), (BARRIER, 1),
             (END,)],
            [(COMPUTE, 500), (BARRIER, 0), (COMPUTE, 10), (BARRIER, 1),
             (END,)],
        ]
        def build(quantum):
            space = AddressSpace()
            spec = make_spec([list(t) for t in traces],
                             barriers=[barrier_spec(2, 0, space),
                                       barrier_spec(2, 1, space)])
            return Machine(tiny_config(2, Scheme.REBOUND), spec,
                           fuse_quantum=quantum)
        assert build(DEFAULT_FUSE_QUANTUM).run() == build(1).run()
